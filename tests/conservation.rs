//! Cross-crate invariant tests: whatever the scheduler, the simulator
//! must conserve work, time and resources, and identical inputs must
//! yield identical outputs.

use dollymp::prelude::*;

fn workload(seed: u64, n: u64) -> Vec<JobSpec> {
    generate_google(&GoogleConfig {
        njobs: n as usize,
        mean_gap_slots: 2.0,
        seed,
        ..Default::default()
    })
}

fn all_schedulers() -> Vec<&'static str> {
    vec![
        "fifo",
        "capacity-nospec",
        "drf",
        "tetris",
        "tetris+clone1",
        "carbyne",
        "srpt",
        "svf",
        "dollymp0",
        "dollymp2",
    ]
}

#[test]
fn every_scheduler_satisfies_time_invariants() {
    let cluster = ClusterSpec::google_like(30, 77);
    let jobs = workload(77, 120);
    let sampler = DurationSampler::new(77, StragglerModel::google_traces());
    for name in all_schedulers() {
        let mut s = by_name(name).unwrap();
        let r = simulate(
            &cluster,
            jobs.clone(),
            &sampler,
            s.as_mut(),
            &EngineConfig::default(),
        );
        assert_eq!(r.jobs.len(), jobs.len(), "{name}: all jobs complete");
        for (spec, m) in jobs.iter().zip({
            let by = r.by_id();
            jobs.iter().map(move |j| *by.get(&j.id).unwrap())
        }) {
            assert_eq!(m.arrival, spec.arrival, "{name}");
            assert!(m.first_start >= m.arrival, "{name}: start after arrival");
            assert!(m.finish > m.first_start, "{name}: positive running time");
            assert_eq!(m.flowtime, m.finish - m.arrival, "{name}");
            assert_eq!(m.running_time, m.finish - m.first_start, "{name}");
            // Each phase takes ≥ 1 slot, phases on the critical path are
            // sequential.
            assert!(
                m.running_time >= spec.num_phases() as u64,
                "{name}: running time below phase count"
            );
            assert!(m.usage > 0.0, "{name}: usage accrued");
            assert_eq!(m.tasks, spec.total_tasks(), "{name}");
        }
        assert_eq!(
            r.makespan,
            r.jobs.iter().map(|j| j.finish).max().unwrap(),
            "{name}"
        );
    }
}

#[test]
fn simulation_is_deterministic_per_seed() {
    let cluster = ClusterSpec::google_like(25, 5);
    let jobs = workload(5, 80);
    let sampler = DurationSampler::new(5, StragglerModel::ParetoFit);
    for name in ["dollymp2", "tetris", "capacity-nospec"] {
        let mut s1 = by_name(name).unwrap();
        let r1 = simulate(
            &cluster,
            jobs.clone(),
            &sampler,
            s1.as_mut(),
            &EngineConfig::default(),
        );
        let mut s2 = by_name(name).unwrap();
        let r2 = simulate(
            &cluster,
            jobs.clone(),
            &sampler,
            s2.as_mut(),
            &EngineConfig::default(),
        );
        // scheduling_ns is wall-clock and legitimately varies; everything
        // that describes the simulation itself must be identical.
        assert_eq!(r1.jobs, r2.jobs, "{name}: same inputs ⇒ same outputs");
        assert_eq!(r1.makespan, r2.makespan, "{name}");
        assert_eq!(r1.decision_points, r2.decision_points, "{name}");
    }
}

#[test]
fn different_seeds_change_outcomes_but_not_job_counts() {
    let cluster = ClusterSpec::google_like(25, 5);
    let jobs = workload(5, 60);
    let a = DurationSampler::new(5, StragglerModel::ParetoFit);
    let b = DurationSampler::new(6, StragglerModel::ParetoFit);
    let mut s1 = by_name("dollymp2").unwrap();
    let r1 = simulate(
        &cluster,
        jobs.clone(),
        &a,
        s1.as_mut(),
        &EngineConfig::default(),
    );
    let mut s2 = by_name("dollymp2").unwrap();
    let r2 = simulate(
        &cluster,
        jobs.clone(),
        &b,
        s2.as_mut(),
        &EngineConfig::default(),
    );
    assert_eq!(r1.jobs.len(), r2.jobs.len());
    assert_ne!(r1.total_flowtime(), r2.total_flowtime());
}

#[test]
fn clone_budgets_are_never_exceeded() {
    let cluster = ClusterSpec::google_like(40, 13);
    let jobs = workload(13, 100);
    let sampler = DurationSampler::new(13, StragglerModel::google_traces());
    for (name, max_extra) in [
        ("dollymp0", 0u64),
        ("dollymp1", 1),
        ("dollymp2", 2),
        ("dollymp3", 3),
    ] {
        let mut s = by_name(name).unwrap();
        let r = simulate(
            &cluster,
            jobs.clone(),
            &sampler,
            s.as_mut(),
            &EngineConfig::default(),
        );
        for m in &r.jobs {
            assert!(
                m.clone_copies <= m.tasks * max_extra,
                "{name}: job {} launched {} clones for {} tasks",
                m.id.0,
                m.clone_copies,
                m.tasks
            );
            assert!(m.tasks_cloned <= m.tasks, "{name}");
            if max_extra == 0 {
                assert_eq!(m.clone_copies, 0, "{name} must never clone");
            }
        }
    }
}

#[test]
fn paired_durations_make_no_clone_schedulers_agree_on_isolated_jobs() {
    // A single job alone in the cluster: any work-conserving non-cloning
    // scheduler must produce the same makespan, because placement freedom
    // only matters under contention and durations are paired...
    // Heterogeneous speeds break that, so use a homogeneous cluster.
    let cluster = ClusterSpec::homogeneous(8, 8.0, 16.0);
    let job = JobSpec::single_phase(JobId(0), 12, Resources::new(2.0, 4.0), 9.0, 3.0);
    let sampler = DurationSampler::new(3, StragglerModel::ParetoFit);
    let mut outcomes = Vec::new();
    for name in ["fifo", "srpt", "svf", "drf", "tetris", "dollymp0"] {
        let mut s = by_name(name).unwrap();
        let r = simulate(
            &cluster,
            vec![job.clone()],
            &sampler,
            s.as_mut(),
            &EngineConfig::default(),
        );
        outcomes.push((name, r.jobs[0].flowtime));
    }
    let first = outcomes[0].1;
    for (name, f) in &outcomes {
        assert_eq!(*f, first, "{name} diverged: {outcomes:?}");
    }
}

#[test]
fn usage_accounting_matches_hand_computation() {
    // Deterministic single job, no clones: usage = Σ tasks (cpu/ΣC +
    // mem/ΣM) × duration.
    let cluster = ClusterSpec::homogeneous(2, 4.0, 8.0); // totals (8, 16)
    let job = JobSpec::single_phase(JobId(0), 4, Resources::new(1.0, 2.0), 6.0, 0.0);
    let sampler = DurationSampler::new(1, StragglerModel::Deterministic);
    let mut s = by_name("fifo").unwrap();
    let r = simulate(
        &cluster,
        vec![job],
        &sampler,
        s.as_mut(),
        &EngineConfig::default(),
    );
    // Per task: (1/8 + 2/16) × 6 = 1.5; 4 tasks → 6.0.
    assert!((r.jobs[0].usage - 6.0).abs() < 1e-9);
}
