//! Integration across the control-plane and persistence layers: the YARN
//! simulation vs the oracle scheduler, history warm-up, and trace
//! round-trips through JSON.

use dollymp::prelude::*;

fn recurring_workload(seed: u64, n: u64) -> Vec<JobSpec> {
    (0..n)
        .map(|i| {
            let j = dollymp::workload::apps::wordcount(JobId(i), 0, 4.0, seed);
            JobSpec::builder(JobId(i))
                .arrival(i * 5)
                .label("wordcount")
                .phase(j.phases()[0].clone())
                .phase(j.phases()[1].clone())
                .build()
                .unwrap()
        })
        .collect()
}

#[test]
fn yarn_system_completes_and_archives_history() {
    let cluster = ClusterSpec::paper_30_node();
    let jobs = recurring_workload(42, 10);
    let sampler = DurationSampler::new(42, StragglerModel::ParetoFit);
    let history = HistoryRegistry::new();
    let mut yarn = YarnSystem::with_history(2, history.clone());
    let r = simulate(
        &cluster,
        jobs,
        &sampler,
        &mut yarn,
        &EngineConfig::default(),
    );
    assert_eq!(r.jobs.len(), 10);
    // Both wordcount phases now have priors.
    assert!(history.prior("wordcount", 0).is_some());
    assert!(history.prior("wordcount", 1).is_some());
    let (mean, std, n) = history.prior("wordcount", 0).unwrap();
    assert!(mean > 0.0 && std >= 0.0 && n >= 10);
}

#[test]
fn warm_history_recovers_the_short_before_long_order() {
    // Estimation only matters when durations differ but sizes do not:
    // two recurring apps, identical task counts and demands, one 10×
    // longer than the other. The cold AM guesses the same θ̂ for both
    // (no ordering signal); priors from one warm-up run let the RM put
    // the short app first — shrinking the gap to the oracle.
    let cluster = ClusterSpec::homogeneous(2, 8.0, 16.0);
    let mk = |id: u64, arrival, label: &str, theta: f64| {
        JobSpec::builder(JobId(id))
            .arrival(arrival)
            .label(label)
            .phase(dollymp::core::job::PhaseSpec::new(
                8,
                Resources::new(1.0, 2.0),
                theta,
                theta * 0.2,
            ))
            .build()
            .unwrap()
    };
    // Alternating short/long arrivals, all at once → ordering decides
    // everything.
    let jobs: Vec<JobSpec> = (0..12u64)
        .map(|i| {
            if i % 2 == 0 {
                mk(i, 0, "short", 4.0)
            } else {
                mk(i, 0, "long", 40.0)
            }
        })
        .collect();
    let sampler = DurationSampler::new(5, StragglerModel::ParetoFit);

    let mut oracle = DollyMP::with_clones(0);
    let r_oracle = simulate(
        &cluster,
        jobs.clone(),
        &sampler,
        &mut oracle,
        &EngineConfig::default(),
    );

    let history = HistoryRegistry::new();
    let mut cold = YarnSystem::with_history(0, history.clone());
    let r_cold = simulate(
        &cluster,
        jobs.clone(),
        &sampler,
        &mut cold,
        &EngineConfig::default(),
    );
    let mut warm = YarnSystem::with_history(0, history.clone());
    let r_warm = simulate(
        &cluster,
        jobs,
        &sampler,
        &mut warm,
        &EngineConfig::default(),
    );

    let gap = |r: &SimReport| (r.total_flowtime() as f64 - r_oracle.total_flowtime() as f64).abs();
    assert!(
        gap(&r_warm) < gap(&r_cold),
        "warm gap {} must beat cold gap {} (oracle {}, cold {}, warm {})",
        gap(&r_warm),
        gap(&r_cold),
        r_oracle.total_flowtime(),
        r_cold.total_flowtime(),
        r_warm.total_flowtime()
    );
    // And the short jobs specifically finish earlier under warm history.
    let mean_short = |r: &SimReport| {
        let flows: Vec<f64> = r.jobs_labeled("short").map(|j| j.flowtime as f64).collect();
        flows.iter().sum::<f64>() / flows.len() as f64
    };
    assert!(mean_short(&r_warm) < mean_short(&r_cold));
}

#[test]
fn trace_round_trip_preserves_simulation_results() {
    let jobs = generate_google(&GoogleConfig {
        njobs: 60,
        mean_gap_slots: 2.0,
        seed: 31,
        ..Default::default()
    });
    let trace = Trace::new("round trip", jobs.clone());
    let parsed = Trace::from_json(&trace.to_json()).unwrap();

    let cluster = ClusterSpec::google_like(20, 31);
    let sampler = DurationSampler::new(31, StragglerModel::ParetoFit);
    let mut s1 = by_name("dollymp2").unwrap();
    let r1 = simulate(
        &cluster,
        jobs,
        &sampler,
        s1.as_mut(),
        &EngineConfig::default(),
    );
    let mut s2 = by_name("dollymp2").unwrap();
    let r2 = simulate(
        &cluster,
        parsed.jobs,
        &sampler,
        s2.as_mut(),
        &EngineConfig::default(),
    );
    // scheduling_ns is wall-clock; compare the simulation contents.
    assert_eq!(
        r1.jobs, r2.jobs,
        "serialization must not perturb the simulation"
    );
    assert_eq!(r1.makespan, r2.makespan);
}

#[test]
fn yarn_clone_budget_matches_request_budget() {
    let cluster = ClusterSpec::paper_30_node();
    let jobs = recurring_workload(17, 6);
    let sampler = DurationSampler::new(17, StragglerModel::ParetoFit);
    for clones in [0u32, 1, 2] {
        let mut yarn = YarnSystem::new(clones);
        let r = simulate(
            &cluster,
            jobs.clone(),
            &sampler,
            &mut yarn,
            &EngineConfig::default(),
        );
        for m in &r.jobs {
            assert!(
                m.clone_copies <= m.tasks * clones as u64,
                "yarn-dollymp{clones}: {} clones for {} tasks",
                m.clone_copies,
                m.tasks
            );
        }
    }
}
