//! Regression pin for the incremental Algorithm 1 path: DollyMP with the
//! job-summary cache enabled (the default) must produce *identical*
//! scheduling batches to the cache-free path on a seeded workload. The
//! cache only memoizes a pure function of (remaining work, cluster
//! totals, σ-weight), so any divergence here is a bug in the
//! fingerprinting, not an acceptable approximation.

use dollymp::prelude::*;

fn seeded_workload() -> (ClusterSpec, Vec<JobSpec>, DurationSampler) {
    let cluster = ClusterSpec::paper_30_node();
    let mut jobs = Vec::new();
    for i in 0..60u64 {
        let (n, theta) = match i % 4 {
            0 => (20, 40.0),
            1 => (4, 8.0),
            2 => (8, 12.0),
            _ => (2, 5.0),
        };
        jobs.push(
            JobSpec::builder(JobId(i))
                .arrival(i * 3)
                .phase(dollymp_core::job::PhaseSpec::new(
                    n,
                    Resources::new(1.0 + (i % 3) as f64, 4.0),
                    theta,
                    theta / 2.0,
                ))
                .build()
                .expect("valid job spec"),
        );
    }
    let sampler = DurationSampler::new(23, StragglerModel::ParetoFit);
    (cluster, jobs, sampler)
}

#[test]
fn summary_cache_does_not_change_decisions() {
    let (cluster, jobs, sampler) = seeded_workload();
    for clones in [0u32, 1, 2] {
        let mut cached = DollyMP::with_clones(clones);
        let r_cached = simulate(
            &cluster,
            jobs.clone(),
            &sampler,
            &mut cached,
            &EngineConfig::default(),
        );
        let mut uncached = DollyMP::with_clones(clones).without_summary_cache();
        let r_uncached = simulate(
            &cluster,
            jobs.clone(),
            &sampler,
            &mut uncached,
            &EngineConfig::default(),
        );
        assert_eq!(
            r_cached.jobs, r_uncached.jobs,
            "dollymp{clones}: per-job metrics diverged between cached and \
             uncached Algorithm 1"
        );
        assert_eq!(r_cached.makespan, r_uncached.makespan, "dollymp{clones}");
        assert_eq!(
            r_cached.decision_points, r_uncached.decision_points,
            "dollymp{clones}"
        );
    }
}

#[test]
fn summary_cache_equivalence_with_multi_phase_jobs() {
    // Phase completions change the remaining-work fingerprint mid-run;
    // the cache must recompute exactly those jobs.
    let cluster = ClusterSpec::homogeneous(8, 4.0, 8.0);
    let mut jobs = Vec::new();
    for i in 0..12u64 {
        jobs.push(
            JobSpec::builder(JobId(i))
                .arrival(i * 4)
                .phase(dollymp_core::job::PhaseSpec::new(
                    3,
                    Resources::new(1.0, 2.0),
                    6.0 + (i % 5) as f64,
                    2.0,
                ))
                .phase(
                    dollymp_core::job::PhaseSpec::new(2, Resources::new(2.0, 2.0), 4.0, 1.0)
                        .with_parents(vec![PhaseId(0)]),
                )
                .build()
                .expect("valid job spec"),
        );
    }
    let sampler = DurationSampler::new(5, StragglerModel::ParetoFit);
    let mut cached = DollyMP::new();
    let r_cached = simulate(
        &cluster,
        jobs.clone(),
        &sampler,
        &mut cached,
        &EngineConfig::default(),
    );
    let mut uncached = DollyMP::new().without_summary_cache();
    let r_uncached = simulate(
        &cluster,
        jobs,
        &sampler,
        &mut uncached,
        &EngineConfig::default(),
    );
    assert_eq!(r_cached.jobs, r_uncached.jobs);
    assert_eq!(r_cached.makespan, r_uncached.makespan);
}
