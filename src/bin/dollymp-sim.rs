//! `dollymp-sim` — command-line simulation driver.
//!
//! Runs one workload under one or more schedulers on a chosen cluster and
//! prints a comparison table; optionally dumps full per-job reports as
//! JSON for downstream analysis.
//!
//! ```text
//! dollymp-sim [--scheduler NAME[,NAME…]] [--cluster paper30|google]
//!             [--workload google|light|heavy-pagerank|heavy-wordcount]
//!             [--trace FILE.json] [--jobs N] [--servers N] [--seed N]
//!             [--load F] [--out FILE.json] [--timeline PREFIX]
//! ```
//!
//! Examples:
//!
//! ```sh
//! cargo run --release --bin dollymp-sim -- \
//!     --scheduler dollymp2,tetris,drf --workload google --jobs 500 \
//!     --servers 100 --load 0.6 --seed 7
//! cargo run --release --bin dollymp-sim -- --trace my_trace.json \
//!     --cluster paper30 --scheduler capacity,dollymp2
//! ```

use dollymp::prelude::*;
use std::process::exit;

#[derive(Debug)]
struct Args {
    schedulers: Vec<String>,
    cluster: String,
    workload: String,
    trace: Option<String>,
    jobs: usize,
    servers: u32,
    seed: u64,
    load: Option<f64>,
    out: Option<String>,
    timeline: Option<String>,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            schedulers: vec!["dollymp2".into(), "tetris".into(), "capacity-nospec".into()],
            cluster: "google".into(),
            workload: "google".into(),
            trace: None,
            jobs: 300,
            servers: 100,
            seed: 42,
            load: Some(0.6),
            out: None,
            timeline: None,
        }
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: dollymp-sim [--scheduler NAME[,NAME…]] [--cluster paper30|google]\n\
         \x20                  [--workload google|light|heavy-pagerank|heavy-wordcount]\n\
         \x20                  [--trace FILE.json] [--jobs N] [--servers N] [--seed N]\n\
         \x20                  [--load F] [--out FILE.json] [--timeline PREFIX]\n\
         schedulers: {}",
        dollymp::schedulers::ALL_NAMES.join(", ")
    );
    exit(2)
}

fn parse_args() -> Args {
    let mut args = Args::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = || it.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--scheduler" | "-s" => {
                args.schedulers = val().split(',').map(str::to_string).collect()
            }
            "--cluster" | "-c" => args.cluster = val(),
            "--workload" | "-w" => args.workload = val(),
            "--trace" | "-t" => args.trace = Some(val()),
            "--jobs" | "-j" => args.jobs = val().parse().unwrap_or_else(|_| usage()),
            "--servers" | "-n" => args.servers = val().parse().unwrap_or_else(|_| usage()),
            "--seed" => args.seed = val().parse().unwrap_or_else(|_| usage()),
            "--load" | "-l" => args.load = Some(val().parse().unwrap_or_else(|_| usage())),
            "--out" | "-o" => args.out = Some(val()),
            "--timeline" => args.timeline = Some(val()),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other}");
                usage()
            }
        }
    }
    args
}

fn build_cluster(args: &Args) -> ClusterSpec {
    match args.cluster.as_str() {
        "paper30" => ClusterSpec::paper_30_node(),
        "google" => ClusterSpec::google_like(args.servers, args.seed),
        other => {
            eprintln!("unknown cluster {other}");
            usage()
        }
    }
}

fn build_workload(args: &Args, cluster: &ClusterSpec) -> Vec<JobSpec> {
    if let Some(path) = &args.trace {
        match Trace::load(path) {
            Ok(t) => return t.jobs,
            Err(e) => {
                eprintln!("failed to load trace {path}: {e}");
                exit(1);
            }
        }
    }
    let mut jobs = match args.workload.as_str() {
        "google" => generate_google(&GoogleConfig {
            njobs: args.jobs,
            mean_gap_slots: 2.0,
            seed: args.seed,
            ..Default::default()
        }),
        "light" => dollymp::workload::suite::light_load(args.seed, (100 / args.jobs.max(1)).max(1)),
        "heavy-pagerank" => {
            dollymp::workload::suite::heavy_pagerank(args.seed, (500 / args.jobs.max(1)).max(1))
        }
        "heavy-wordcount" => {
            dollymp::workload::suite::heavy_wordcount(args.seed, (500 / args.jobs.max(1)).max(1))
        }
        other => {
            eprintln!("unknown workload {other}");
            usage()
        }
    };
    if let (Some(load), "google") = (args.load, args.workload.as_str()) {
        // Re-space arrivals for the requested dominant-share load.
        let totals = cluster.totals();
        let total_work: f64 = jobs.iter().map(|j| j.volume(totals, 0.0)).sum();
        let span = total_work / load;
        let gap = span / jobs.len().max(1) as f64;
        let arrivals = dollymp::workload::arrivals::poisson(jobs.len(), gap, args.seed ^ 0xC11);
        for (j, &a) in jobs.iter_mut().zip(&arrivals) {
            j.arrival = a;
        }
        jobs.sort_by_key(|j| (j.arrival, j.id));
    }
    jobs
}

fn main() {
    let args = parse_args();
    let cluster = build_cluster(&args);
    let jobs = build_workload(&args, &cluster);
    let sampler = DurationSampler::new(args.seed, StragglerModel::google_traces());
    println!(
        "cluster: {} servers, totals {} | seed {}",
        cluster.len(),
        cluster.totals(),
        args.seed
    );
    let stats = dollymp::workload::WorkloadStats::compute(&jobs, cluster.totals());
    println!("{}\n", stats.render());
    println!(
        "{:<20} {:>12} {:>10} {:>10} {:>10} {:>12}",
        "scheduler", "total flow", "mean flow", "mean run", "makespan", "clones"
    );

    let mut reports = Vec::new();
    for name in &args.schedulers {
        let Some(mut s) = by_name(name) else {
            eprintln!("unknown scheduler {name}");
            usage()
        };
        let cfg = EngineConfig {
            tick: (name == "capacity" || name == "hopper").then_some(1),
            record_timeline: args.timeline.is_some(),
            ..Default::default()
        };
        let r = simulate(&cluster, jobs.clone(), &sampler, s.as_mut(), &cfg);
        println!(
            "{:<20} {:>12} {:>10.1} {:>10.1} {:>10} {:>12}",
            name,
            r.total_flowtime(),
            r.mean_flowtime(),
            r.mean_running_time(),
            r.makespan,
            r.jobs.iter().map(|j| j.clone_copies).sum::<u64>()
        );
        reports.push(r);
    }

    if let Some(path) = &args.timeline {
        // One Chrome-trace file per scheduler: <path>.<scheduler>.json
        for r in &reports {
            let trace = dollymp::cluster::metrics::timeline_to_chrome_trace(&r.timeline, 5.0);
            let file = format!("{path}.{}.json", r.scheduler);
            if let Err(e) = std::fs::write(&file, trace) {
                eprintln!("failed to write {file}: {e}");
                exit(1);
            }
            println!("timeline ({} spans) written to {file}", r.timeline.len());
        }
    }

    if let Some(path) = &args.out {
        // `.csv` → per-job CSV (one file per scheduler); anything else →
        // one JSON document with the full reports.
        if path.ends_with(".csv") {
            for r in &reports {
                let file = path.replace(".csv", &format!(".{}.csv", r.scheduler));
                if let Err(e) = std::fs::write(&file, r.jobs_to_csv()) {
                    eprintln!("failed to write {file}: {e}");
                    exit(1);
                }
                println!("per-job csv written to {file}");
            }
        } else {
            match serde_json::to_string(&reports) {
                Ok(json) => {
                    if let Err(e) = std::fs::write(path, json) {
                        eprintln!("failed to write {path}: {e}");
                        exit(1);
                    }
                    println!("\nfull reports written to {path}");
                }
                Err(e) => {
                    eprintln!("serialization failed: {e}");
                    exit(1);
                }
            }
        }
    }
}
