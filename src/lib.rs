//! # dollymp
//!
//! Umbrella crate for the **DollyMP** reproduction — *"Multi Resource
//! Scheduling with Task Cloning in Heterogeneous Clusters"* (Xu, Liu,
//! Lau — ICPP 2022) — re-exporting the full stack:
//!
//! | Layer | Crate | Re-export |
//! |---|---|---|
//! | Scheduling mathematics (Algorithm 1/2, speedup models, theory) | `dollymp-core` | [`core`] |
//! | Cluster simulator (slotted engine, stragglers, clones) | `dollymp-cluster` | [`cluster`] |
//! | Fault-schedule generators (crashes, blackouts, fail-slow) | `dollymp-faults` | [`faults`] |
//! | Workload generators (WordCount/PageRank, Google-like traces) | `dollymp-workload` | [`workload`] |
//! | Schedulers (DollyMP^r, Tetris, DRF, Capacity, Carbyne, SRPT, SVF) | `dollymp-schedulers` | [`schedulers`] |
//! | YARN-like control plane (RM/AM, estimation, locality) | `dollymp-yarn` | [`yarn`] |
//!
//! ## Five-minute tour
//!
//! ```
//! use dollymp::prelude::*;
//!
//! // The paper's 30-node heterogeneous cluster (§6.1).
//! let cluster = ClusterSpec::paper_30_node();
//!
//! // A small WordCount/PageRank mix (§6.2's light-load suite, scaled).
//! let jobs = dollymp::workload::suite::light_load(42, 20); // 5 jobs
//!
//! // Paired stochastic durations: same seed ⇒ same task durations for
//! // every scheduler.
//! let sampler = DurationSampler::new(42, StragglerModel::ParetoFit);
//!
//! // Run DollyMP² and the Capacity baseline on identical inputs.
//! let mut dollymp = DollyMP::new();
//! let r1 = simulate(&cluster, jobs.clone(), &sampler, &mut dollymp, &EngineConfig::default());
//! let mut capacity = CapacityScheduler::new();
//! let r2 = simulate(&cluster, jobs, &sampler, &mut capacity, &EngineConfig::default());
//!
//! assert_eq!(r1.jobs.len(), r2.jobs.len());
//! println!("DollyMP² flowtime {} vs Capacity {}", r1.total_flowtime(), r2.total_flowtime());
//! ```
//!
//! See `examples/` for runnable end-to-end scenarios and
//! `crates/bench/src/bin/` for the binaries regenerating every figure of
//! the paper's evaluation (EXPERIMENTS.md records the outcomes).

#![warn(clippy::all)]

pub use dollymp_cluster as cluster;
pub use dollymp_core as core;
pub use dollymp_faults as faults;
pub use dollymp_schedulers as schedulers;
pub use dollymp_workload as workload;
pub use dollymp_yarn as yarn;

/// One-stop imports for examples and downstream users.
pub mod prelude {
    pub use dollymp_cluster::prelude::*;
    pub use dollymp_core::prelude::*;
    pub use dollymp_faults::FaultConfig;
    pub use dollymp_schedulers::{
        by_name, CapacityScheduler, Carbyne, DollyMP, Drf, PriorityScheduler, Tetris,
    };
    pub use dollymp_workload::{generate_google, GoogleConfig, Trace};
    pub use dollymp_yarn::{HistoryRegistry, YarnSystem};
}
