//! Offline vendored mini-`criterion`.
//!
//! Provides the `criterion_group!`/`criterion_main!`/`bench_function` surface
//! with straightforward wall-clock measurement: a short warm-up, an adaptive
//! inner-iteration count so fast routines are timed in ≥1 ms batches, and a
//! `[min mean max]` per-iteration report line compatible with scripts that
//! grep criterion's `time:` output. No statistical analysis or HTML reports.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be >= 2");
        self.sample_size = n;
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            sample_size: self.sample_size,
            samples_ns: Vec::new(),
        };
        f(&mut b);
        report(name, &b.samples_ns);
        self
    }
}

pub struct Bencher {
    sample_size: usize,
    samples_ns: Vec<f64>,
}

impl Bencher {
    /// Time `f` per call; fast routines are batched so each sample spans at
    /// least ~1 ms of wall clock.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up + calibration.
        let start = Instant::now();
        black_box(f());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let inner = (Duration::from_millis(1).as_nanos() / once.as_nanos()).clamp(1, 1_000_000);
        self.samples_ns = (0..self.sample_size)
            .map(|_| {
                let start = Instant::now();
                for _ in 0..inner {
                    black_box(f());
                }
                start.elapsed().as_nanos() as f64 / inner as f64
            })
            .collect();
    }

    /// Criterion's batched form: `setup` runs untimed before every routine
    /// call; only `routine` is timed.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        // Warm-up.
        black_box(routine(setup()));
        self.samples_ns = (0..self.sample_size)
            .map(|_| {
                let input = setup();
                let start = Instant::now();
                black_box(routine(input));
                start.elapsed().as_nanos() as f64
            })
            .collect();
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.3} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

fn report(name: &str, samples_ns: &[f64]) {
    if samples_ns.is_empty() {
        println!("{name:<40} time:   [no samples]");
        return;
    }
    let min = samples_ns.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = samples_ns.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let mean = samples_ns.iter().sum::<f64>() / samples_ns.len() as f64;
    println!(
        "{name:<40} time:   [{} {} {}]",
        fmt_ns(min),
        fmt_ns(mean),
        fmt_ns(max)
    );
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            $(
                {
                    let mut criterion: $crate::Criterion = $config;
                    $target(&mut criterion);
                }
            )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_records_samples() {
        let mut c = Criterion::default().sample_size(5);
        c.bench_function("spin", |b| b.iter(|| (0..100u64).sum::<u64>()));
    }

    #[test]
    fn iter_batched_records_samples() {
        let mut c = Criterion::default().sample_size(3);
        c.bench_function("batched", |b| {
            b.iter_batched(
                || vec![1u64; 1000],
                |v| v.iter().sum::<u64>(),
                BatchSize::LargeInput,
            )
        });
    }

    #[test]
    fn units_format() {
        assert_eq!(fmt_ns(12.0), "12.00 ns");
        assert_eq!(fmt_ns(1_500.0), "1.50 µs");
        assert_eq!(fmt_ns(2_500_000.0), "2.500 ms");
    }
}
