//! Offline vendored mini-`serde`.
//!
//! A Value-tree serialization framework with the same user-facing surface the
//! workspace relies on: `#[derive(Serialize, Deserialize)]` (via the sibling
//! `serde_derive` shim) and the `Serialize`/`Deserialize` traits consumed by
//! the vendored `serde_json`. Instead of real serde's visitor architecture,
//! types convert to/from [`value::Value`], which `serde_json` renders.
//!
//! Format notes (chosen to match real serde's JSON output where the
//! workspace's types exercise it):
//! - named-field structs → objects; newtype structs → the inner value;
//!   tuple structs → arrays; unit structs → null
//! - enums are externally tagged: unit variants → `"Name"`, newtype variants
//!   → `{"Name": value}`, tuple variants → `{"Name": [..]}`, struct variants
//!   → `{"Name": {..}}`
//! - maps serialize as arrays of `[key, value]` pairs (real serde cannot
//!   write non-string keys like `JobId` or `(String, u32)` to JSON at all;
//!   the pair-array form round-trips every key type uniformly). `HashMap`
//!   entries are sorted by encoded key so output is deterministic.
//! - non-finite floats → null; null → NaN on the way back

pub use serde_derive::{Deserialize, Serialize};

pub mod value;

use std::fmt;
use value::Value;

/// Serialization/deserialization error: a plain message.
#[derive(Debug, Clone)]
pub struct Error(pub String);

impl Error {
    pub fn custom(msg: impl fmt::Display) -> Self {
        Error(msg.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

/// Convert `self` into a [`Value`] tree.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Reconstruct `Self` from a [`Value`] tree.
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::UInt(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::custom(concat!("integer out of range for ", stringify!($t)))),
                    Value::Int(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::custom(concat!("integer out of range for ", stringify!($t)))),
                    other => Err(Error::custom(format!(
                        "expected unsigned integer, found {}", other.kind()
                    ))),
                }
            }
        }
    )*};
}

impl_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Int(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::custom(concat!("integer out of range for ", stringify!($t)))),
                    Value::UInt(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::custom(concat!("integer out of range for ", stringify!($t)))),
                    other => Err(Error::custom(format!(
                        "expected integer, found {}", other.kind()
                    ))),
                }
            }
        }
    )*};
}

impl_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Float(f) => Ok(*f),
            Value::UInt(n) => Ok(*n as f64),
            Value::Int(n) => Ok(*n as f64),
            Value::Null => Ok(f64::NAN),
            other => Err(Error::custom(format!(
                "expected float, found {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::custom(format!(
                "expected bool, found {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::custom(format!(
                "expected string, found {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(Error::custom(format!(
                "expected single-char string, found {}",
                other.kind()
            ))),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

// ---------------------------------------------------------------------------
// Sequences, tuples, maps
// ---------------------------------------------------------------------------

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::custom(format!(
                "expected array, found {}",
                other.kind()
            ))),
        }
    }
}

impl<T: Serialize> Serialize for std::collections::VecDeque<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for std::collections::VecDeque<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Vec::<T>::from_value(v).map(Into::into)
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                const LEN: usize = 0 $(+ { let _ = $idx; 1 })+;
                match v {
                    Value::Array(items) if items.len() == LEN => {
                        Ok(($($name::from_value(&items[$idx])?,)+))
                    }
                    other => Err(Error::custom(format!(
                        "expected {}-tuple array, found {}", LEN, other.kind()
                    ))),
                }
            }
        }
    )*};
}

impl_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

fn map_to_value<'a, K, V, I>(entries: I, sort: bool) -> Value
where
    K: Serialize + 'a,
    V: Serialize + 'a,
    I: Iterator<Item = (&'a K, &'a V)>,
{
    let mut pairs: Vec<Value> = entries
        .map(|(k, v)| Value::Array(vec![k.to_value(), v.to_value()]))
        .collect();
    if sort {
        pairs.sort_by(|a, b| a.canonical_cmp(b));
    }
    Value::Array(pairs)
}

fn map_from_value<K: Deserialize, V: Deserialize>(v: &Value) -> Result<Vec<(K, V)>, Error> {
    match v {
        Value::Array(items) => items
            .iter()
            .map(|pair| match pair {
                Value::Array(kv) if kv.len() == 2 => {
                    Ok((K::from_value(&kv[0])?, V::from_value(&kv[1])?))
                }
                other => Err(Error::custom(format!(
                    "expected [key, value] pair, found {}",
                    other.kind()
                ))),
            })
            .collect(),
        other => Err(Error::custom(format!(
            "expected map (array of pairs), found {}",
            other.kind()
        ))),
    }
}

impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        map_to_value(self.iter(), false)
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for std::collections::BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        map_from_value(v).map(|pairs| pairs.into_iter().collect())
    }
}

impl<K: Serialize, V: Serialize, S> Serialize for std::collections::HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        map_to_value(self.iter(), true)
    }
}

impl<K, V, S> Deserialize for std::collections::HashMap<K, V, S>
where
    K: Deserialize + Eq + std::hash::Hash,
    V: Deserialize,
    S: std::hash::BuildHasher + Default,
{
    fn from_value(v: &Value) -> Result<Self, Error> {
        map_from_value(v).map(|pairs| pairs.into_iter().collect())
    }
}

impl<T: Serialize, S> Serialize for std::collections::HashSet<T, S> {
    fn to_value(&self) -> Value {
        let mut items: Vec<Value> = self.iter().map(Serialize::to_value).collect();
        items.sort_by(|a, b| a.canonical_cmp(b));
        Value::Array(items)
    }
}

impl<T, S> Deserialize for std::collections::HashSet<T, S>
where
    T: Deserialize + Eq + std::hash::Hash,
    S: std::hash::BuildHasher + Default,
{
    fn from_value(v: &Value) -> Result<Self, Error> {
        Vec::<T>::from_value(v).map(|items| items.into_iter().collect())
    }
}

impl<T: Serialize + Ord> Serialize for std::collections::BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for std::collections::BTreeSet<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Vec::<T>::from_value(v).map(|items| items.into_iter().collect())
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

// ---------------------------------------------------------------------------
// Helpers used by the generated derive code
// ---------------------------------------------------------------------------

/// Fetch a required struct field from a decoded object.
pub fn get_field<'a>(fields: &'a [(String, Value)], name: &str) -> Result<&'a Value, Error> {
    fields
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .ok_or_else(|| Error::custom(format!("missing field `{name}`")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::{BTreeMap, HashMap};

    #[test]
    fn option_round_trip() {
        let some = Some(5u32);
        assert_eq!(Option::<u32>::from_value(&some.to_value()).unwrap(), some);
        let none: Option<u32> = None;
        assert_eq!(Option::<u32>::from_value(&none.to_value()).unwrap(), none);
    }

    #[test]
    fn hashmap_is_sorted_and_round_trips() {
        let mut m = HashMap::new();
        m.insert(3u64, "c".to_string());
        m.insert(1u64, "a".to_string());
        let v = m.to_value();
        if let Value::Array(pairs) = &v {
            assert_eq!(pairs.len(), 2);
            assert_eq!(
                pairs[0],
                Value::Array(vec![Value::UInt(1), Value::Str("a".into())])
            );
        } else {
            panic!("expected array of pairs");
        }
        let back: HashMap<u64, String> = Deserialize::from_value(&v).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn btreemap_round_trips() {
        let mut m = BTreeMap::new();
        m.insert("x".to_string(), 1usize);
        m.insert("y".to_string(), 2usize);
        let back: BTreeMap<String, usize> = Deserialize::from_value(&m.to_value()).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn nan_becomes_null_then_nan() {
        let v = f64::NAN.to_value();
        let rendered_null = matches!(v, Value::Float(f) if f.is_nan());
        assert!(rendered_null);
        assert!(f64::from_value(&Value::Null).unwrap().is_nan());
    }
}
