//! The dynamic value tree both `serde` traits and `serde_json` operate on.

use std::cmp::Ordering;

/// A JSON-shaped dynamic value. Integers keep their signedness so u64/i64
/// round-trip exactly; floats are rendered by `serde_json` with Rust's
/// shortest-round-trip formatting.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    UInt(u64),
    Int(i64),
    Float(f64),
    Str(String),
    Array(Vec<Value>),
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Human-readable kind name for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::UInt(_) | Value::Int(_) => "integer",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(fields) => Some(fields),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::UInt(n) => Some(*n),
            Value::Int(n) => u64::try_from(*n).ok(),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(n) => Some(*n),
            Value::UInt(n) => i64::try_from(*n).ok(),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Float(f) => Some(*f),
            Value::UInt(n) => Some(*n as f64),
            Value::Int(n) => Some(*n as f64),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()
            .and_then(|fields| fields.iter().find(|(k, _)| k == key))
            .map(|(_, v)| v)
    }

    /// A total order used to sort hash-map entries deterministically.
    /// Ordering across kinds is by kind rank; numbers compare numerically.
    pub fn canonical_cmp(&self, other: &Value) -> Ordering {
        fn rank(v: &Value) -> u8 {
            match v {
                Value::Null => 0,
                Value::Bool(_) => 1,
                Value::UInt(_) | Value::Int(_) | Value::Float(_) => 2,
                Value::Str(_) => 3,
                Value::Array(_) => 4,
                Value::Object(_) => 5,
            }
        }
        fn num(v: &Value) -> Option<f64> {
            match v {
                Value::UInt(n) => Some(*n as f64),
                Value::Int(n) => Some(*n as f64),
                Value::Float(f) => Some(*f),
                _ => None,
            }
        }
        match (self, other) {
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            (Value::Str(a), Value::Str(b)) => a.cmp(b),
            (Value::Array(a), Value::Array(b)) => {
                for (x, y) in a.iter().zip(b.iter()) {
                    let ord = x.canonical_cmp(y);
                    if ord != Ordering::Equal {
                        return ord;
                    }
                }
                a.len().cmp(&b.len())
            }
            (Value::Object(a), Value::Object(b)) => {
                for ((ka, va), (kb, vb)) in a.iter().zip(b.iter()) {
                    let ord = ka.cmp(kb).then_with(|| va.canonical_cmp(vb));
                    if ord != Ordering::Equal {
                        return ord;
                    }
                }
                a.len().cmp(&b.len())
            }
            _ => match (num(self), num(other)) {
                (Some(a), Some(b)) => a.partial_cmp(&b).unwrap_or(Ordering::Equal),
                _ => rank(self).cmp(&rank(other)),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        assert_eq!(Value::UInt(3).as_u64(), Some(3));
        assert_eq!(Value::Int(-3).as_i64(), Some(-3));
        assert_eq!(Value::Int(5).as_u64(), Some(5));
        assert_eq!(Value::Str("x".into()).as_str(), Some("x"));
        assert!(Value::Null.is_null());
        let obj = Value::Object(vec![("k".into(), Value::Bool(true))]);
        assert_eq!(obj.get("k"), Some(&Value::Bool(true)));
        assert_eq!(obj.get("missing"), None);
    }

    #[test]
    fn canonical_order_mixes_int_kinds() {
        let mut vals = vec![Value::UInt(5), Value::Int(-1), Value::Float(2.5)];
        vals.sort_by(|a, b| a.canonical_cmp(b));
        assert_eq!(
            vals,
            vec![Value::Int(-1), Value::Float(2.5), Value::UInt(5)]
        );
    }
}
