//! Offline vendored `serde_derive` shim.
//!
//! Generates `Serialize`/`Deserialize` impls for the vendored mini-serde by
//! walking the raw `proc_macro::TokenStream` directly — no `syn`/`quote`
//! (unavailable offline). Supports exactly what the workspace derives on:
//! non-generic structs (named / newtype / tuple / unit) and non-generic enums
//! (unit / newtype / tuple / struct variants). The only `#[serde(...)]`
//! attribute understood is `#[serde(default)]` on a named struct field
//! (fill with `Default::default()` when the field is absent); anything
//! else inside `#[serde(...)]` panics rather than being silently ignored.

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::iter::Peekable;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("serde shim: generated Serialize impl failed to parse")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("serde shim: generated Deserialize impl failed to parse")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Field {
    name: String,
    /// `#[serde(default)]`: fill with `Default::default()` when missing.
    default: bool,
}

enum Shape {
    Unit,
    Newtype,
    Tuple(usize),
    Named(Vec<Field>),
}

enum Kind {
    Struct(Shape),
    Enum(Vec<(String, Shape)>),
}

struct Item {
    name: String,
    kind: Kind,
}

type Tokens = Peekable<proc_macro::token_stream::IntoIter>;

/// Skip leading attributes; report whether one of them was
/// `#[serde(default)]`. Any other `#[serde(...)]` content panics (the
/// shim must not silently change semantics).
fn skip_attrs(toks: &mut Tokens) -> bool {
    let mut has_default = false;
    while let Some(TokenTree::Punct(p)) = toks.peek() {
        if p.as_char() != '#' {
            break;
        }
        toks.next();
        match toks.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
                let mut inner = g.stream().into_iter();
                let is_serde = matches!(
                    inner.next(),
                    Some(TokenTree::Ident(id)) if id.to_string() == "serde"
                );
                if is_serde {
                    match inner.next() {
                        Some(TokenTree::Group(args))
                            if args.delimiter() == Delimiter::Parenthesis
                                && args.stream().to_string().trim() == "default" =>
                        {
                            has_default = true;
                        }
                        other => panic!(
                            "serde shim: unsupported #[serde(...)] attribute \
                             (only `default` is understood): {other:?}"
                        ),
                    }
                }
            }
            other => panic!("serde shim: malformed attribute: {other:?}"),
        }
    }
    has_default
}

fn skip_vis(toks: &mut Tokens) {
    if let Some(TokenTree::Ident(id)) = toks.peek() {
        if id.to_string() == "pub" {
            toks.next();
            if let Some(TokenTree::Group(g)) = toks.peek() {
                if g.delimiter() == Delimiter::Parenthesis {
                    toks.next();
                }
            }
        }
    }
}

fn expect_ident(toks: &mut Tokens, what: &str) -> String {
    match toks.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde shim: expected {what}, found {other:?}"),
    }
}

fn parse_item(input: TokenStream) -> Item {
    let mut toks = input.into_iter().peekable();
    skip_attrs(&mut toks);
    skip_vis(&mut toks);
    let kw = expect_ident(&mut toks, "`struct` or `enum`");
    let name = expect_ident(&mut toks, "type name");
    if let Some(TokenTree::Punct(p)) = toks.peek() {
        if p.as_char() == '<' {
            panic!("serde shim: generic type `{name}` is not supported");
        }
    }
    let kind = match kw.as_str() {
        "struct" => Kind::Struct(match toks.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                match count_tuple_fields(g.stream()) {
                    1 => Shape::Newtype,
                    n => Shape::Tuple(n),
                }
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::Unit,
            other => panic!("serde shim: unexpected token after `struct {name}`: {other:?}"),
        }),
        "enum" => match toks.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde shim: unexpected token after `enum {name}`: {other:?}"),
        },
        other => panic!("serde shim: cannot derive for `{other}` items"),
    };
    Item { name, kind }
}

/// Consume tokens up to a top-level `,` (angle-bracket aware, so commas in
/// `BTreeMap<String, usize>` don't split fields). Returns false at stream end.
fn skip_type(toks: &mut Tokens) -> bool {
    let mut depth = 0i32;
    for tok in toks.by_ref() {
        if let TokenTree::Punct(p) = &tok {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => return true,
                _ => {}
            }
        }
    }
    false
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let mut toks = stream.into_iter().peekable();
    let mut fields = Vec::new();
    loop {
        let default = skip_attrs(&mut toks);
        if toks.peek().is_none() {
            return fields;
        }
        skip_vis(&mut toks);
        fields.push(Field {
            name: expect_ident(&mut toks, "field name"),
            default,
        });
        match toks.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde shim: expected `:` after field name, found {other:?}"),
        }
        if !skip_type(&mut toks) {
            return fields;
        }
    }
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut toks = stream.into_iter().peekable();
    let mut count = 0;
    loop {
        skip_attrs(&mut toks);
        if toks.peek().is_none() {
            return count;
        }
        skip_vis(&mut toks);
        if toks.peek().is_none() {
            return count;
        }
        count += 1;
        if !skip_type(&mut toks) {
            return count;
        }
    }
}

fn parse_variants(stream: TokenStream) -> Vec<(String, Shape)> {
    let mut toks = stream.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        skip_attrs(&mut toks);
        if toks.peek().is_none() {
            return variants;
        }
        let name = expect_ident(&mut toks, "variant name");
        let shape = match toks.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let shape = match count_tuple_fields(g.stream()) {
                    1 => Shape::Newtype,
                    n => Shape::Tuple(n),
                };
                toks.next();
                shape
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let shape = Shape::Named(parse_named_fields(g.stream()));
                toks.next();
                shape
            }
            _ => Shape::Unit,
        };
        variants.push((name, shape));
        match toks.next() {
            None => return variants,
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => {}
            other => panic!("serde shim: expected `,` after variant, found {other:?}"),
        }
    }
}

// ---------------------------------------------------------------------------
// Code generation (plain strings, parsed back into a TokenStream)
// ---------------------------------------------------------------------------

const VALUE: &str = "::serde::value::Value";

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        Kind::Struct(Shape::Unit) => format!("{VALUE}::Null"),
        Kind::Struct(Shape::Newtype) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Kind::Struct(Shape::Tuple(n)) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("{VALUE}::Array(vec![{}])", items.join(", "))
        }
        Kind::Struct(Shape::Named(fields)) => ser_named_object("self.", fields),
        Kind::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|(v, shape)| match shape {
                    Shape::Unit => {
                        format!("{name}::{v} => {VALUE}::Str(\"{v}\".to_string()),")
                    }
                    Shape::Newtype => format!(
                        "{name}::{v}(__b0) => {VALUE}::Object(vec![(\"{v}\".to_string(), \
                         ::serde::Serialize::to_value(__b0))]),"
                    ),
                    Shape::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__b{i}")).collect();
                        let items: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value({b})"))
                            .collect();
                        format!(
                            "{name}::{v}({}) => {VALUE}::Object(vec![(\"{v}\".to_string(), \
                             {VALUE}::Array(vec![{}]))]),",
                            binds.join(", "),
                            items.join(", ")
                        )
                    }
                    Shape::Named(fields) => {
                        let inner = ser_named_object("", fields);
                        let binds: Vec<&str> = fields.iter().map(|f| f.name.as_str()).collect();
                        format!(
                            "{name}::{v} {{ {} }} => {VALUE}::Object(vec![(\"{v}\".to_string(), \
                             {inner})]),",
                            binds.join(", ")
                        )
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> {VALUE} {{ {body} }}\n\
         }}"
    )
}

fn ser_named_object(prefix: &str, fields: &[Field]) -> String {
    let pairs: Vec<String> = fields
        .iter()
        .map(|f| {
            let f = &f.name;
            format!("(\"{f}\".to_string(), ::serde::Serialize::to_value(&{prefix}{f}))")
        })
        .collect();
    format!("{VALUE}::Object(vec![{}])", pairs.join(", "))
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        Kind::Struct(Shape::Unit) => format!("{{ let _ = __v; Ok({name}) }}"),
        Kind::Struct(Shape::Newtype) => {
            format!("Ok({name}(::serde::Deserialize::from_value(__v)?))")
        }
        Kind::Struct(Shape::Tuple(n)) => de_tuple(name, *n, "__v"),
        Kind::Struct(Shape::Named(fields)) => de_named(name, fields, "__v"),
        Kind::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|(_, s)| matches!(s, Shape::Unit))
                .map(|(v, _)| format!("\"{v}\" => Ok({name}::{v}),"))
                .collect();
            let tagged_arms: Vec<String> = variants
                .iter()
                .filter_map(|(v, shape)| match shape {
                    Shape::Unit => None,
                    Shape::Newtype => Some(format!(
                        "\"{v}\" => Ok({name}::{v}(::serde::Deserialize::from_value(__inner)?)),"
                    )),
                    Shape::Tuple(n) => Some(format!(
                        "\"{v}\" => {},",
                        de_tuple(&format!("{name}::{v}"), *n, "__inner")
                    )),
                    Shape::Named(fields) => Some(format!(
                        "\"{v}\" => {},",
                        de_named(&format!("{name}::{v}"), fields, "__inner")
                    )),
                })
                .collect();
            let str_arm = format!(
                "{VALUE}::Str(__s) => match __s.as_str() {{ {} __other => \
                 Err(::serde::Error::custom(format!(\"{name}: unknown variant {{__other}}\"))) \
                 }},",
                unit_arms.join(" ")
            );
            let obj_arm = if tagged_arms.is_empty() {
                String::new()
            } else {
                format!(
                    "{VALUE}::Object(__fields) if __fields.len() == 1 => {{\n\
                         let (__tag, __inner) = &__fields[0];\n\
                         match __tag.as_str() {{ {} __other => \
                         Err(::serde::Error::custom(format!(\"{name}: unknown variant \
                         {{__other}}\"))) }}\n\
                     }},",
                    tagged_arms.join(" ")
                )
            };
            format!(
                "match __v {{ {str_arm} {obj_arm} __other => \
                 Err(::serde::Error::custom(format!(\"{name}: expected variant, found {{}}\", \
                 __other.kind()))) }}"
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
             fn from_value(__v: &{VALUE}) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 #[allow(unused_imports)] use ::std::result::Result::{{Ok, Err}};\n\
                 {body}\n\
             }}\n\
         }}"
    )
}

/// Build `Ctor(from_value(&items[0])?, ...)` from an array-shaped value.
fn de_tuple(ctor: &str, n: usize, src: &str) -> String {
    let items: Vec<String> = (0..n)
        .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?"))
        .collect();
    format!(
        "{{\n\
             let __items = {src}.as_array().ok_or_else(|| \
             ::serde::Error::custom(\"{ctor}: expected array\"))?;\n\
             if __items.len() != {n} {{\n\
                 return Err(::serde::Error::custom(\"{ctor}: wrong tuple length\"));\n\
             }}\n\
             Ok({ctor}({}))\n\
         }}",
        items.join(", ")
    )
}

/// Build `Ctor { f: from_value(get_field(fields, "f")?)?, ... }` from an
/// object-shaped value.
fn de_named(ctor: &str, fields: &[Field], src: &str) -> String {
    if fields.is_empty() {
        return format!("{{ let _ = {src}; Ok({ctor} {{}}) }}");
    }
    let inits: Vec<String> = fields
        .iter()
        .map(|f| {
            let name = &f.name;
            if f.default {
                format!(
                    "{name}: match ::serde::get_field(__obj, \"{name}\") {{\n\
                         Ok(__fv) => ::serde::Deserialize::from_value(__fv)?,\n\
                         Err(_) => ::std::default::Default::default(),\n\
                     }}"
                )
            } else {
                format!(
                    "{name}: ::serde::Deserialize::from_value(::serde::get_field(__obj, \
                     \"{name}\")?)?"
                )
            }
        })
        .collect();
    format!(
        "{{\n\
             let __obj = {src}.as_object().ok_or_else(|| \
             ::serde::Error::custom(\"{ctor}: expected object\"))?;\n\
             Ok({ctor} {{ {} }})\n\
         }}",
        inits.join(", ")
    )
}
