//! Offline vendored mini-`serde_json`: renders and parses JSON text over the
//! vendored serde [`Value`] tree.
//!
//! Floats are written with Rust's `{}` formatting, which is
//! shortest-round-trip (so `f64` values survive a serialize → parse cycle
//! bit-exactly); non-finite floats render as `null` like real serde_json.

pub use serde::value::Value;

use std::fmt;

/// JSON error: a message plus the byte offset where parsing failed (0 for
/// serialization/decode errors).
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
    offset: usize,
}

impl Error {
    fn parse(msg: impl Into<String>, offset: usize) -> Self {
        Error {
            msg: msg.into(),
            offset,
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.offset > 0 {
            write!(f, "{} at byte {}", self.msg, self.offset)
        } else {
            write!(f, "{}", self.msg)
        }
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error {
            msg: e.0,
            offset: 0,
        }
    }
}

/// Serialize a value to a JSON string.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.to_value(), &mut out);
    Ok(out)
}

/// Serialize with two-space indentation.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render_pretty(&value.to_value(), &mut out, 0);
    Ok(out)
}

/// Parse a JSON string into any `Deserialize` type (including [`Value`]).
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::parse("trailing characters", p.pos));
    }
    Ok(T::from_value(&v)?)
}

// ---------------------------------------------------------------------------
// Rendering
// ---------------------------------------------------------------------------

fn render(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::Float(f) => render_float(*f, out),
        Value::Str(s) => render_string(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                render(item, out);
            }
            out.push(']');
        }
        Value::Object(fields) => {
            out.push('{');
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                render_string(k, out);
                out.push(':');
                render(val, out);
            }
            out.push('}');
        }
    }
}

fn render_pretty(v: &Value, out: &mut String, depth: usize) {
    let pad = |out: &mut String, d: usize| {
        out.push('\n');
        for _ in 0..d {
            out.push_str("  ");
        }
    };
    match v {
        Value::Array(items) if !items.is_empty() => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                pad(out, depth + 1);
                render_pretty(item, out, depth + 1);
            }
            pad(out, depth);
            out.push(']');
        }
        Value::Object(fields) if !fields.is_empty() => {
            out.push('{');
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                pad(out, depth + 1);
                render_string(k, out);
                out.push_str(": ");
                render_pretty(val, out, depth + 1);
            }
            pad(out, depth);
            out.push('}');
        }
        other => render(other, out),
    }
}

fn render_float(f: f64, out: &mut String) {
    if !f.is_finite() {
        out.push_str("null");
    } else if f == f.trunc() && f.abs() < 1e16 {
        // Match serde_json: whole floats print with a trailing `.0`.
        out.push_str(&format!("{f:.1}"));
    } else {
        out.push_str(&format!("{f}"));
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::parse(format!("expected `{}`", b as char), self.pos))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(Error::parse("expected JSON value", self.pos)),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::parse("expected `,` or `]`", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(Error::parse("expected `,` or `}`", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            match self.peek() {
                None => return Err(Error::parse("unterminated string", self.pos)),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::parse("unterminated escape", self.pos))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let cp = self.hex4()?;
                            // Surrogate pair support.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if !self.eat_keyword("\\u") {
                                    return Err(Error::parse("lone surrogate", start));
                                }
                                let lo = self.hex4()?;
                                let combined =
                                    0x10000 + ((cp - 0xD800) << 10) + (lo.wrapping_sub(0xDC00));
                                char::from_u32(combined)
                                    .ok_or_else(|| Error::parse("invalid surrogate pair", start))?
                            } else {
                                char::from_u32(cp)
                                    .ok_or_else(|| Error::parse("invalid \\u escape", start))?
                            };
                            out.push(c);
                        }
                        other => {
                            return Err(Error::parse(
                                format!("invalid escape `\\{}`", other as char),
                                start,
                            ))
                        }
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 encoded char.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| Error::parse("invalid UTF-8", self.pos))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let start = self.pos;
        let hex = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| Error::parse("truncated \\u escape", start))?;
        self.pos += 4;
        let s = std::str::from_utf8(hex).map_err(|_| Error::parse("bad \\u escape", start))?;
        u32::from_str_radix(s, 16).map_err(|_| Error::parse("bad \\u escape", start))
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::parse("invalid number", start))?;
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::UInt(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::Int(n));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::parse("invalid number", start))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        for s in ["null", "true", "false", "0", "-17", "3.5", "\"hi\""] {
            let v: Value = from_str(s).unwrap();
            assert_eq!(to_string(&v).unwrap(), s, "round trip of {s}");
        }
    }

    #[test]
    fn float_round_trip_is_exact() {
        for f in [0.1, 1.0 / 3.0, 1e-300, 123456.789e20, f64::MIN_POSITIVE] {
            let text = to_string(&f).unwrap();
            let back: f64 = from_str(&text).unwrap();
            assert_eq!(back.to_bits(), f.to_bits(), "{f} via {text}");
        }
    }

    #[test]
    fn whole_floats_keep_a_decimal_point() {
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        let back: f64 = from_str("2.0").unwrap();
        assert_eq!(back, 2.0);
    }

    #[test]
    fn non_finite_is_null() {
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        assert_eq!(to_string(&f64::INFINITY).unwrap(), "null");
    }

    #[test]
    fn nested_value_access() {
        let v: Value = from_str(r#"{"xs": [1, 2.5, "three", null], "ok": true}"#).unwrap();
        let xs = v.get("xs").unwrap().as_array().unwrap();
        assert_eq!(xs.len(), 4);
        assert_eq!(xs[0].as_u64(), Some(1));
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(true));
    }

    #[test]
    fn string_escapes() {
        let v: Value = from_str(r#""a\n\"b\"Aé""#).unwrap();
        assert_eq!(v.as_str(), Some("a\n\"b\"Aé"));
        let rendered = to_string(&"tab\there").unwrap();
        assert_eq!(rendered, r#""tab\there""#);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<Value>("{oops}").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("1 2").is_err());
    }

    #[test]
    fn pretty_prints() {
        let v: Value = from_str(r#"{"a":[1,2]}"#).unwrap();
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains("\n  \"a\": ["));
    }
}
