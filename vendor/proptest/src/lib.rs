//! Offline vendored mini-`proptest`.
//!
//! Property tests sample deterministically (seeded from the test's module
//! path + name) and run `cases` times. No shrinking: a failing case panics
//! with the usual assert message. The API surface matches what the workspace
//! uses: `proptest! { ... }` with an optional
//! `#![proptest_config(ProptestConfig::with_cases(n))]`, numeric-range
//! strategies, tuples, `prop::collection::vec`, `.prop_map`, and the
//! `prop_assert!` / `prop_assert_eq!` / `prop_assume!` macros.

use std::ops::{Range, RangeInclusive};

pub mod test_runner {
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    pub use crate::ProptestConfig as Config;

    /// Deterministic per-test RNG (FNV-1a of the test path seeds SmallRng).
    pub struct TestRng(pub(crate) SmallRng);

    impl TestRng {
        pub fn from_name(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng(SmallRng::seed_from_u64(h))
        }
    }
}

use test_runner::TestRng;

/// Runner configuration. Only `cases` is meaningful in this shim; the other
/// fields exist so `ProptestConfig { cases, ..Default::default() }` compiles.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_shrink_iters: 0,
        }
    }
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..Default::default()
        }
    }
}

/// A source of random values of one type.
pub trait Strategy {
    type Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        (**self).sample(rng)
    }
}

/// `.prop_map` adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.sample(rng))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rand::Rng::gen_range(&mut rng.0, self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rand::Rng::gen_range(&mut rng.0, self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{Range, RangeInclusive, Strategy, TestRng};

    /// Anything usable as the vec-length argument.
    pub trait SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            rand::Rng::gen_range(&mut rng.0, self.clone())
        }
    }

    impl SizeRange for RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            rand::Rng::gen_range(&mut rng.0, self.clone())
        }
    }

    pub struct VecStrategy<S, R> {
        elem: S,
        size: R,
    }

    pub fn vec<S: Strategy, R: SizeRange>(elem: S, size: R) -> VecStrategy<S, R> {
        VecStrategy { elem, size }
    }

    impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

#[macro_export]
macro_rules! proptest {
    (@impl ($cfg:expr); $( $(#[$meta:meta])* fn $name:ident ( $($p:pat in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::test_runner::TestRng::from_name(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                for _case in 0..__cfg.cases {
                    let ($($p,)+) = ($( $crate::Strategy::sample(&($strat), &mut __rng), )+);
                    let mut __body = move || $body;
                    __body();
                }
            }
        )*
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($cfg); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::ProptestConfig::default()); $($rest)*);
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($rest:tt)*)?) => {
        if !($cond) {
            return;
        }
    };
}

pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just, ProptestConfig,
        Strategy,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn evens() -> impl Strategy<Value = u64> {
        (0u64..100).prop_map(|x| x * 2)
    }

    proptest! {
        #[test]
        fn ranges_in_bounds(x in 1u32..10, f in 0.5f64..2.0, (a, b) in (0i64..5, -3i64..=3)) {
            prop_assert!((1..10).contains(&x));
            prop_assert!((0.5..2.0).contains(&f), "f = {f}");
            prop_assert!(a < 5 && (-3..=3).contains(&b));
        }

        #[test]
        fn vec_and_map(xs in prop::collection::vec(evens(), 0..12)) {
            prop_assert!(xs.len() < 12);
            for x in xs {
                prop_assert_eq!(x % 2, 0);
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(7))]
        #[test]
        fn assume_skips(x in 0u32..10) {
            prop_assume!(x > 3);
            prop_assert!(x > 3);
        }
    }
}
