//! Offline vendored mini-`rand`.
//!
//! The container this workspace builds in has no access to crates.io, so the
//! workspace ships the tiny subset of the `rand 0.8` API it actually uses:
//! [`rngs::SmallRng`], [`SeedableRng::seed_from_u64`], and the [`Rng`]
//! extension methods `gen_range` / `gen_bool` / `gen`. The generator is
//! xoshiro256++ seeded via splitmix64 — the same core algorithm real
//! `rand 0.8` uses for `SmallRng` on 64-bit targets.

/// Low-level source of random 64-bit words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction. Only `seed_from_u64` is provided because that is
/// the only constructor the workspace calls.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that `Rng::gen` can produce.
pub trait StandardSample: Sized {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl StandardSample for f32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64()) as f32
    }
}

impl StandardSample for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for u64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

/// Map a random `u64` to a uniform `f64` in `[0, 1)` (53-bit mantissa).
#[inline]
fn unit_f64(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Ranges that `Rng::gen_range` accepts.
///
/// The sampling algorithms below intentionally mirror `rand 0.8`'s uniform
/// samplers **bit for bit** (Lemire widening-multiply with rejection for
/// integers; the 52-bit `[1, 2)` mantissa method for floats), because the
/// workspace's seeded statistical tests were calibrated against real
/// `rand 0.8` value streams.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty => $gen:ident: $u:ty, $wide:ty),* $(,)?) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let range = self.end.wrapping_sub(self.start) as $u;
                let zone = (range << range.leading_zeros()).wrapping_sub(1);
                loop {
                    let v = $gen(rng);
                    let m = (v as $wide).wrapping_mul(range as $wide);
                    let (hi, lo) = ((m >> <$u>::BITS) as $u, m as $u);
                    if lo <= zone {
                        return self.start.wrapping_add(hi as $t);
                    }
                }
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (low, high) = (*self.start(), *self.end());
                assert!(low <= high, "gen_range: empty range");
                let range = high.wrapping_sub(low).wrapping_add(1) as $u;
                if range == 0 {
                    // The range spans the whole type; any value works.
                    return $gen(rng) as $t;
                }
                let zone = (range << range.leading_zeros()).wrapping_sub(1);
                loop {
                    let v = $gen(rng);
                    let m = (v as $wide).wrapping_mul(range as $wide);
                    let (hi, lo) = ((m >> <$u>::BITS) as $u, m as $u);
                    if lo <= zone {
                        return low.wrapping_add(hi as $t);
                    }
                }
            }
        }
    )*};
}

#[inline]
fn gen_u64<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
    rng.next_u64()
}

#[inline]
fn gen_u32<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
    // rand 0.8's SmallRng (xoshiro256++) truncates next_u64 for next_u32.
    rng.next_u64() as u32
}

impl_int_range!(
    u8 => gen_u32: u32, u64,
    u16 => gen_u32: u32, u64,
    u32 => gen_u32: u32, u64,
    i8 => gen_u32: u32, u64,
    i16 => gen_u32: u32, u64,
    i32 => gen_u32: u32, u64,
    u64 => gen_u64: u64, u128,
    i64 => gen_u64: u64, u128,
    usize => gen_u64: u64, u128,
    isize => gen_u64: u64, u128,
);

/// Largest float strictly below `x` (positive finite `x`).
#[inline]
fn next_down(x: f64) -> f64 {
    f64::from_bits(x.to_bits() - 1)
}

impl SampleRange<f64> for core::ops::Range<f64> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let mut scale = self.end - self.start;
        loop {
            // 52 random mantissa bits → value in [0, 1), as rand 0.8 does.
            let value0_1 = (rng.next_u64() >> 12) as f64 * (1.0 / (1u64 << 52) as f64);
            let res = value0_1 * scale + self.start;
            if res < self.end {
                return res;
            }
            scale = next_down(scale);
        }
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (low, high) = (*self.start(), *self.end());
        assert!(low <= high, "gen_range: empty range");
        let mut scale = (high - low) / (1.0 - f64::EPSILON / 2.0);
        loop {
            let value0_1 = (rng.next_u64() >> 12) as f64 * (1.0 / (1u64 << 52) as f64);
            let res = value0_1 * scale + low;
            if res <= high {
                return res;
            }
            scale = next_down(scale);
        }
    }
}

impl SampleRange<f32> for core::ops::Range<f32> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "gen_range: empty range");
        let mut scale = self.end - self.start;
        loop {
            // 23 random mantissa bits from a u32 draw, as rand 0.8 does.
            let value0_1 = (gen_u32(rng) >> 9) as f32 * (1.0 / (1u32 << 23) as f32);
            let res = value0_1 * scale + self.start;
            if res < self.end {
                return res;
            }
            scale = f32::from_bits(scale.to_bits() - 1);
        }
    }
}

impl SampleRange<f32> for core::ops::RangeInclusive<f32> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        let (low, high) = (*self.start(), *self.end());
        assert!(low <= high, "gen_range: empty range");
        let mut scale = (high - low) / (1.0 - f32::EPSILON / 2.0);
        loop {
            let value0_1 = (gen_u32(rng) >> 9) as f32 * (1.0 / (1u32 << 23) as f32);
            let res = value0_1 * scale + low;
            if res <= high {
                return res;
            }
            scale = f32::from_bits(scale.to_bits() - 1);
        }
    }
}

/// The user-facing extension trait, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    #[inline]
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p not in [0,1]");
        // rand 0.8's Bernoulli: integer threshold compare; p = 1.0 consumes
        // no draw.
        if p >= 1.0 {
            return true;
        }
        let p_int = (p * 2.0 * (1u64 << 63) as f64) as u64;
        self.next_u64() < p_int
    }

    #[inline]
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::standard_sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — small, fast, and good enough for simulation workloads.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(mut state: u64) -> Self {
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let out = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = r.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&x));
            let y = r.gen_range(3usize..10);
            assert!((3..10).contains(&y));
            let f = r.gen_range(f64::MIN_POSITIVE..1.0);
            assert!(f > 0.0 && f < 1.0);
            let p: f64 = r.gen();
            assert!((0.0..1.0).contains(&p));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = SmallRng::seed_from_u64(9);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
    }
}
