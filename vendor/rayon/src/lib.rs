//! Offline vendored mini-`rayon`.
//!
//! Supports the one pattern the workspace uses —
//! `slice.par_iter().map(f).collect::<Vec<_>>()` — with real parallelism:
//! the input is split into one contiguous chunk per available core and each
//! chunk is mapped on a scoped OS thread. Output order matches input order.

use std::num::NonZeroUsize;

fn thread_count(items: usize) -> usize {
    let cores = std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1);
    cores.min(items).max(1)
}

/// `.par_iter()` entry point, implemented for slices and `Vec`.
pub trait IntoParallelRefIterator<'a> {
    type Item: 'a;
    fn par_iter(&'a self) -> ParIter<'a, Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

pub struct ParIter<'a, T> {
    items: &'a [T],
}

impl<'a, T: Sync> ParIter<'a, T> {
    pub fn map<R, F>(self, f: F) -> ParMap<'a, T, F>
    where
        F: Fn(&'a T) -> R + Sync,
        R: Send,
    {
        ParMap {
            items: self.items,
            f,
        }
    }
}

pub struct ParMap<'a, T, F> {
    items: &'a [T],
    f: F,
}

impl<'a, T: Sync, F> ParMap<'a, T, F> {
    pub fn collect<C, R>(self) -> C
    where
        F: Fn(&'a T) -> R + Sync,
        R: Send,
        C: From<Vec<R>>,
    {
        C::from(par_map_slice(self.items, &self.f))
    }
}

/// Map `f` over `items` on scoped threads, preserving order.
pub fn par_map_slice<'a, T, R, F>(items: &'a [T], f: &F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&'a T) -> R + Sync,
{
    if items.is_empty() {
        return Vec::new();
    }
    let nthreads = thread_count(items.len());
    if nthreads == 1 {
        return items.iter().map(f).collect();
    }
    let chunk = items.len().div_ceil(nthreads);
    let mut out: Vec<Vec<R>> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk)
            .map(|part| scope.spawn(move || part.iter().map(f).collect::<Vec<R>>()))
            .collect();
        out = handles
            .into_iter()
            .map(|h| h.join().expect("rayon shim worker panicked"))
            .collect();
    });
    out.into_iter().flatten().collect()
}

pub mod prelude {
    pub use crate::IntoParallelRefIterator;
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn maps_in_order() {
        let v: Vec<u64> = (0..1000).collect();
        let doubled: Vec<u64> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input() {
        let v: Vec<u64> = Vec::new();
        let out: Vec<u64> = v.par_iter().map(|x| *x).collect();
        assert!(out.is_empty());
    }
}
